//! # TIMELY reproduction — facade crate
//!
//! This crate re-exports the public API of the TIMELY (ISCA 2020)
//! reproduction workspace so downstream users can depend on a single crate:
//!
//! * [`nn`] — CNN/DNN model zoo, workload analysis and quantized inference,
//! * [`analog`] — ReRAM crossbars, time-domain interfaces, analog local
//!   buffers, and the component energy/area library,
//! * [`arch`] — the TIMELY architecture simulator (sub-chips, O2IR mapping,
//!   pipelines, energy/area/latency accounting),
//! * [`baselines`] — PRIME, ISAAC, PipeLayer, AtomLayer and Eyeriss-like
//!   reference models, all behind the workspace-wide
//!   [`Backend`](timely_core::Backend) trait with a
//!   [`registry()`](timely_baselines::registry) of every backend,
//! * [`sim`] — a deterministic discrete-event serving simulator (traffic
//!   generation, batching, multi-chip sharding, latency percentiles) layered
//!   on the architecture model,
//! * [`dse`] — a deterministic multi-objective design-space explorer
//!   (declarative search spaces, grid/random/hill-climb strategies,
//!   constraint pruning, memo-cached evaluation, Pareto frontiers),
//! * [`obs`] — observability: deterministic counters/gauges/histograms and
//!   Chrome-trace span export keyed on simulated time, plus a strictly
//!   separated opt-in wall-clock [`Profiler`](timely_obs::Profiler).
//!
//! # Quickstart
//!
//! Every accelerator — TIMELY and all five baselines — implements the
//! unified [`Backend`](timely_core::Backend) trait, and
//! [`registry()`](timely_baselines::registry) returns them all:
//!
//! ```
//! use timely::prelude::*;
//!
//! let model = timely::nn::zoo::vgg_d();
//! // Native TIMELY report, with every architecture detail:
//! let accelerator = TimelyAccelerator::new(TimelyConfig::paper_default());
//! let report = TimelyAccelerator::evaluate(&accelerator, &model)?;
//! assert!(report.energy.total().as_millijoules() > 0.0);
//! // The same chip and every baseline through the Backend trait:
//! for backend in registry() {
//!     let outcome = backend.evaluate(&model)?;
//!     assert!(outcome.energy_millijoules() > 0.0);
//!     assert!(outcome.inferences_per_second() > 0.0);
//! }
//! # Ok::<(), timely::arch::EvalError>(())
//! ```
//!
//! # Offline builds
//!
//! The workspace builds with no network access: every external dependency
//! (`serde`, `rand`, `proptest`, `criterion`) is an API-compatible stub
//! vendored under `vendor/` as a path dependency. Do not add crates.io
//! dependencies; extend the matching stub instead. See the repository
//! `README.md` for the full build/test/bench instructions.

pub use timely_analog as analog;
pub use timely_baselines as baselines;
pub use timely_core as arch;
pub use timely_dse as dse;
pub use timely_nn as nn;
pub use timely_obs as obs;
pub use timely_sim as sim;

/// Commonly used items, importable with `use timely::prelude::*`.
pub mod prelude {
    pub use timely_baselines::{
        baseline_registry, registry, AtomLayerModel, EyerissModel, IsaacModel, PipeLayerModel,
        PrimeModel,
    };
    pub use timely_core::{
        Backend, BackendId, EnergyByCategory, EvalError, EvalOutcome, EvalReport, PeakSpec,
        ServicePhysics, TimelyAccelerator, TimelyConfig,
    };
    pub use timely_dse::{
        Constraints, DseReport, EvalStats, Evaluator, Explorer, ReferenceVerdict, ScreenStats,
        SearchSpace, ServingCheck, Strategy,
    };
    pub use timely_nn::{Model, ModelBuilder};
    pub use timely_obs::{
        ChromeTrace, Histogram, MetricsRegistry, NoopRecorder, Profiler, Recorder, TraceRecorder,
    };
    pub use timely_sim::{
        ArrivalProcess, Fault, FaultKind, ModelMix, Policy, QueueKind, Scenario, ServingSimulator,
        Sharding, SimConfig, SimError, SimReport, StatsMode, TrafficSpec,
    };
}
