//! Offline stub of `rand` providing the subset of the 0.8 API this workspace
//! uses: [`Rng`]/[`RngCore`]/[`SeedableRng`], a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64), and
//! [`distributions::Uniform`] / [`distributions::Standard`].
//!
//! Everything is deterministic — there is no OS entropy source in the
//! offline container, and the workspace only ever seeds explicitly.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (the high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `[low, high)`.
    fn gen_range<T: distributions::SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        distributions::Distribution::sample(
            &distributions::Uniform::new(range.start, range.end),
            self,
        )
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }

    /// Deterministic stand-in for entropy seeding (no OS entropy offline).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5EED_5EED_5EED_5EED)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not be seeded with all zeros.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

/// Distributions over random values.
pub mod distributions {
    use super::Rng;

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: floats uniform in `[0, 1)`,
    /// integers uniform over their full range.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Types that [`Uniform`] can sample.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Samples uniformly from `[low, high]` (`inclusive`) or
        /// `[low, high)`.
        fn sample_uniform<R: Rng + ?Sized>(
            low: Self,
            high: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: Rng + ?Sized>(
                    low: Self,
                    high: Self,
                    _inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let unit: $t = Standard.sample(rng);
                    low + unit * (high - low)
                }
            }
        )*};
    }

    uniform_float!(f32, f64);

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: Rng + ?Sized>(
                    low: Self,
                    high: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let span = (high as i128) - (low as i128) + if inclusive { 1 } else { 0 };
                    assert!(span > 0, "empty Uniform range");
                    let offset = (rng.next_u64() as u128 % span as u128) as i128;
                    (low as i128 + offset) as $t
                }
            }
        )*};
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform distribution over a fixed range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<X> {
        low: X,
        high: X,
        inclusive: bool,
    }

    impl<X: SampleUniform> Uniform<X> {
        /// Uniform over `[low, high)`.
        pub fn new(low: X, high: X) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Self {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: X, high: X) -> Self {
            assert!(low <= high, "Uniform::new_inclusive requires low <= high");
            Self {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<X: SampleUniform> Distribution<X> for Uniform<X> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> X {
            X::sample_uniform(self.low, self.high, self.inclusive, rng)
        }
    }

    /// Exponential distribution with rate `λ` (mean `1/λ`), sampled by
    /// inversion of a uniform draw from `gen_range(0.0..1.0)`.
    ///
    /// This is the inter-arrival distribution of a Poisson process, which is
    /// what the serving simulator's open-loop traffic generators use.
    #[derive(Debug, Clone, Copy)]
    pub struct Exp {
        rate: f64,
    }

    impl Exp {
        /// Exponential with the given rate `λ > 0` (events per unit time).
        ///
        /// # Panics
        ///
        /// Panics if `rate` is not strictly positive and finite.
        pub fn new(rate: f64) -> Self {
            assert!(
                rate > 0.0 && rate.is_finite(),
                "Exp::new requires a positive finite rate, got {rate}"
            );
            Self { rate }
        }

        /// The distribution's mean, `1/λ`.
        pub fn mean(&self) -> f64 {
            1.0 / self.rate
        }
    }

    impl Distribution<f64> for Exp {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // u ∈ [0, 1) so 1 - u ∈ (0, 1] and the log is finite.
            let u: f64 = rng.gen_range(0.0..1.0);
            -(1.0 - u).ln() / self.rate
        }
    }

    /// Geometric distribution over the number of failures before the first
    /// success of a Bernoulli(`p`) trial (support `0, 1, 2, …`, mean
    /// `(1-p)/p`), sampled by inversion of a uniform draw.
    #[derive(Debug, Clone, Copy)]
    pub struct Geometric {
        p: f64,
    }

    impl Geometric {
        /// Geometric with success probability `p ∈ (0, 1]`.
        ///
        /// # Panics
        ///
        /// Panics if `p` is outside `(0, 1]`.
        pub fn new(p: f64) -> Self {
            assert!(
                p > 0.0 && p <= 1.0,
                "Geometric::new requires 0 < p <= 1, got {p}"
            );
            Self { p }
        }

        /// The distribution's mean, `(1-p)/p`.
        pub fn mean(&self) -> f64 {
            (1.0 - self.p) / self.p
        }
    }

    impl Distribution<u64> for Geometric {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            if self.p >= 1.0 {
                return 0;
            }
            let u: f64 = rng.gen_range(0.0..1.0);
            // floor(ln(1-u) / ln(1-p)); both logs are negative, ratio >= 0.
            ((1.0 - u).ln() / (1.0 - self.p).ln()).floor() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_gives_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn standard_floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn uniform_respects_inclusive_float_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = Uniform::new_inclusive(-0.5f32, 0.5f32);
        for _ in 0..10_000 {
            let x = dist.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn uniform_integers_cover_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(13);
        let dist = Uniform::new_inclusive(0usize, 3usize);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[dist.sample(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn uniform_floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(17);
        let dist = Uniform::new_inclusive(0.0f64, 1.0f64);
        let n = 50_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        use super::distributions::Exp;
        let mut rng = StdRng::seed_from_u64(23);
        let dist = Exp::new(4.0);
        assert!((dist.mean() - 0.25).abs() < 1e-12);
        let n = 50_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() / 0.25 < 0.05, "mean {mean}");
    }

    #[test]
    fn exponential_samples_are_nonnegative_and_finite() {
        use super::distributions::Exp;
        let mut rng = StdRng::seed_from_u64(29);
        let dist = Exp::new(0.001);
        for _ in 0..10_000 {
            let x = dist.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "positive finite rate")]
    fn exponential_rejects_nonpositive_rates() {
        let _ = super::distributions::Exp::new(0.0);
    }

    #[test]
    fn geometric_mean_matches_p() {
        use super::distributions::Geometric;
        let mut rng = StdRng::seed_from_u64(31);
        let dist = Geometric::new(0.25);
        assert!((dist.mean() - 3.0).abs() < 1e-12);
        let n = 50_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() / 3.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn geometric_with_certain_success_is_always_zero() {
        use super::distributions::Geometric;
        let mut rng = StdRng::seed_from_u64(37);
        let dist = Geometric::new(1.0);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut rng), 0u64);
        }
    }

    #[test]
    fn works_through_unsized_rng_references() {
        // Mirrors how the workspace calls `gen` with `R: Rng + ?Sized`.
        fn sample_one<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(19);
        let x = sample_one(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}
