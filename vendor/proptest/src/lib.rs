//! Offline stub of `proptest` implementing the subset this workspace's test
//! suite uses: the [`strategy::Strategy`] trait with `prop_map`, tuple and
//! range strategies, `prop::sample::select`, `ProptestConfig::with_cases`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! its deterministic case index so it can be replayed. The `PROPTEST_CASES`
//! environment variable overrides every block's configured case count —
//! useful for lowering it on small CI machines or raising it locally.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::distributions::{Distribution, Uniform};

    /// A generator of test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    Uniform::new(self.start, self.end).sample(rng)
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    Uniform::new_inclusive(*self.start(), *self.end()).sample(rng)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            Uniform::new(self.start, self.end).sample(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.generate(rng), )+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    );
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::distributions::{Distribution, Uniform};

    /// A strategy choosing uniformly from a fixed list of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Chooses uniformly from `items` (which must be non-empty).
    pub fn select<T: Clone + ::std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(
            !items.is_empty(),
            "sample::select requires a non-empty list"
        );
        Select { items }
    }

    impl<T: Clone + ::std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = Uniform::new(0usize, self.items.len()).sample(rng);
            self.items[idx].clone()
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// The RNG driving value generation (deterministic per test + case).
    pub type TestRng = rand::rngs::StdRng;

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the offline CI container has a
            // single CPU, so default lower. Override with PROPTEST_CASES.
            Self { cases: 32 }
        }
    }

    /// Resolves the effective case count: the `PROPTEST_CASES` environment
    /// variable when set (letting CI lower or a developer raise the count
    /// without editing tests), otherwise the block's configuration.
    pub fn effective_cases(config: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .map(|n| n.max(1))
            .unwrap_or(config.cases)
    }

    /// Deterministic RNG for one (test, case) pair.
    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        use rand::SeedableRng;
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(hash ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// A failed property within one generated case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }
}

/// Runs each contained `#[test] fn name(args in strategies) { body }` over
/// many generated cases. Mirrors proptest's macro surface, without
/// shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),* $(,)?
    ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let cases = $crate::test_runner::effective_cases(&config);
                let strategies = ($($strat,)*);
                for case in 0..cases {
                    let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                    let ($($arg,)*) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1, cases, stringify!($name), e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static EXECUTED: AtomicU32 = AtomicU32::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        // Deliberately NOT #[test]: only driven by `case_count_is_respected`
        // below, so no concurrently running test races on EXECUTED.
        fn runs_the_configured_number_of_cases(value in 1usize..=8) {
            EXECUTED.fetch_add(1, Ordering::SeqCst);
            prop_assert!((1..=8).contains(&value));
        }
    }

    #[test]
    fn case_count_is_respected() {
        EXECUTED.store(0, Ordering::SeqCst);
        runs_the_configured_number_of_cases();
        let executed = EXECUTED.load(Ordering::SeqCst);
        let expected = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .map(|n| n.max(1))
            .unwrap_or(17);
        assert_eq!(executed, expected);
    }

    #[test]
    fn generation_is_deterministic_per_test_name_and_case() {
        use crate::strategy::Strategy;
        let strategy = (1usize..=1000, 1usize..=1000);
        let a = strategy.generate(&mut crate::test_runner::case_rng("t", 3));
        let b = strategy.generate(&mut crate::test_runner::case_rng("t", 3));
        let c = strategy.generate(&mut crate::test_runner::case_rng("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prop_map_and_select_compose() {
        use crate::strategy::Strategy;
        let strategy = crate::sample::select(vec![2usize, 4, 8]).prop_map(|v| v * 10);
        let mut rng = crate::test_runner::case_rng("compose", 0);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!(v == 20 || v == 40 || v == 80);
        }
    }

    proptest! {
        #[test]
        fn failing_property_returns_an_error(_x in 0usize..1) {
            // Exercise the early-return path of prop_assert! directly: the
            // closure body must produce Err, which the runner reports.
            let check = || -> Result<(), TestCaseError> {
                let value = 3usize;
                prop_assert!(value > 10, "value {} not > 10", value);
                Ok(())
            };
            prop_assert!(check().is_err());
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy modules (`prop::sample::select`, ...).
    pub mod prop {
        pub use crate::sample;
        pub use crate::strategy;
    }
}
