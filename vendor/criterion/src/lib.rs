//! Offline stub of `criterion` implementing the subset this workspace's
//! benches use: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately lightweight for the 1-CPU container: each
//! benchmark warms up once, then runs enough iterations to fill a short
//! measurement window (capped), and prints a `name: median ns/iter` line.
//! Set `CRITERION_MEASUREMENT_MS` to change the window.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Times a closure over repeated iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let window = measurement_window();
        // One warm-up iteration, also used to size the batch.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (window.as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.nanos_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
    }
}

fn measurement_window() -> Duration {
    let ms = std::env::var("CRITERION_MEASUREMENT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100);
    Duration::from_millis(ms)
}

fn report(group: Option<&str>, id: &str, bencher: &Bencher) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match bencher.nanos_per_iter {
        Some(ns) if ns >= 1_000_000.0 => {
            println!("bench {full:<40} {:>12.3} ms/iter", ns / 1_000_000.0)
        }
        Some(ns) if ns >= 1_000.0 => {
            println!("bench {full:<40} {:>12.3} us/iter", ns / 1_000.0)
        }
        Some(ns) => println!("bench {full:<40} {ns:>12.1} ns/iter"),
        None => println!("bench {full:<40} (no measurement)"),
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkIdInput>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into().0;
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(None, &id, &bencher);
        self
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
#[derive(Debug)]
pub struct BenchmarkIdInput(String);

impl From<&str> for BenchmarkIdInput {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkIdInput {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdInput {
    fn from(id: BenchmarkId) -> Self {
        Self(id.id)
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under the given id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkIdInput>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into().0;
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(Some(&self.name), &id, &bencher);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkIdInput>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into().0;
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(Some(&self.name), &id, &bencher);
        self
    }

    /// Finishes the group (a no-op in the stub).
    pub fn finish(self) {}
}

/// An opaque value the optimizer cannot see through.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Neither test touches CRITERION_MEASUREMENT_MS: set_var while a
    // parallel test thread calls env::var is a setenv/getenv data race.
    // The default 100 ms window is cheap here because the closures are
    // trivial and the iteration count is capped at 1000.

    #[test]
    fn bencher_records_a_measurement() {
        let mut bencher = Bencher::default();
        bencher.iter(|| (0..100u64).sum::<u64>());
        let ns = bencher.nanos_per_iter.expect("iter() must record a time");
        assert!(ns > 0.0);
    }

    #[test]
    fn groups_and_ids_accept_the_criterion_surface() {
        let mut criterion = Criterion::default();
        criterion.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        let mut group = criterion.benchmark_group("group");
        group.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter(|| black_box(2 * 2))
        });
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
