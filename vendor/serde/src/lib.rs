//! Offline stub of `serde` providing the subset of the API this workspace
//! uses: the [`Serialize`] / [`Deserialize`] traits, the derive macros
//! (re-exported from the companion `serde_derive` stub), and a small
//! self-describing JSON-like text format under [`json`] so values can
//! actually be round-tripped.
//!
//! The wire format is intentionally simple and only guaranteed to round-trip
//! its own output:
//!
//! * named structs     → `{"field":value,...}` (declaration order)
//! * newtype structs   → the inner value
//! * tuple structs     → `[v0,v1,...]`
//! * unit enum variant → `"Variant"`
//! * data enum variant → `{"Variant":value}` / `{"Variant":[v0,...]}` /
//!   `{"Variant":{"field":value,...}}`
//! * sequences         → `[v0,v1,...]`
//! * `Option`          → `null` or the value
//! * floats            → shortest round-trip decimal (`{:?}`)

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A value that can be written to a [`Serializer`].
pub trait Serialize {
    /// Writes `self` into the serializer's output.
    fn serialize(&self, s: &mut Serializer);
}

/// A value that can be read back from a [`Deserializer`].
pub trait Deserialize: Sized {
    /// Parses a value of `Self` from the deserializer's input.
    fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error>;
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde stub error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Writer for the stub's JSON-like text format.
#[derive(Debug, Default)]
pub struct Serializer {
    out: String,
}

impl Serializer {
    /// Creates an empty serializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the serializer, returning the serialized text.
    pub fn into_string(self) -> String {
        self.out
    }

    fn comma_if_needed(&mut self) {
        match self.out.as_bytes().last() {
            Some(b'{') | Some(b'[') | Some(b':') | Some(b',') | None => {}
            _ => self.out.push(','),
        }
    }

    /// Writes a raw token (numbers, `null`, `true`/`false`).
    pub fn write_raw(&mut self, token: &str) {
        self.out.push_str(token);
    }

    /// Writes a quoted, escaped string literal.
    pub fn write_string(&mut self, value: &str) {
        self.out.push('"');
        for c in value.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\t' => self.out.push_str("\\t"),
                '\r' => self.out.push_str("\\r"),
                _ => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Opens a `{` for a named-field struct.
    pub fn begin_struct(&mut self) {
        self.comma_if_needed();
        self.out.push('{');
    }

    /// Writes one named field of a struct.
    pub fn field<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) {
        self.comma_if_needed();
        self.write_string(name);
        self.out.push(':');
        value.serialize(self);
    }

    /// Closes a named-field struct.
    pub fn end_struct(&mut self) {
        self.out.push('}');
    }

    /// Opens a `[` for a sequence, tuple, or tuple struct.
    pub fn begin_seq(&mut self) {
        self.comma_if_needed();
        self.out.push('[');
    }

    /// Writes one element of a sequence or tuple.
    pub fn seq_element<T: Serialize>(&mut self, value: &T) {
        self.comma_if_needed();
        value.serialize(self);
    }

    /// Closes a sequence.
    pub fn end_seq(&mut self) {
        self.out.push(']');
    }

    /// Writes a unit enum variant as `"Name"`.
    pub fn unit_variant(&mut self, name: &str) {
        self.comma_if_needed();
        self.write_string(name);
    }

    /// Writes a newtype enum variant as `{"Name":value}`.
    pub fn newtype_variant<T: Serialize>(&mut self, name: &str, value: &T) {
        self.comma_if_needed();
        self.out.push('{');
        self.write_string(name);
        self.out.push(':');
        value.serialize(self);
        self.out.push('}');
    }

    /// Opens a tuple enum variant: `{"Name":[`.
    pub fn begin_tuple_variant(&mut self, name: &str) {
        self.comma_if_needed();
        self.out.push('{');
        self.write_string(name);
        self.out.push_str(":[");
    }

    /// Closes a tuple enum variant: `]}`.
    pub fn end_tuple_variant(&mut self) {
        self.out.push_str("]}");
    }

    /// Opens a struct enum variant: `{"Name":{`.
    pub fn begin_struct_variant(&mut self, name: &str) {
        self.comma_if_needed();
        self.out.push('{');
        self.write_string(name);
        self.out.push_str(":{");
    }

    /// Closes a struct enum variant: `}}`.
    pub fn end_struct_variant(&mut self) {
        self.out.push_str("}}");
    }
}

/// Reader for the stub's JSON-like text format.
#[derive(Debug)]
pub struct Deserializer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Deserializer<'a> {
    /// Creates a deserializer over `input`.
    pub fn new(input: &'a str) -> Self {
        Self { input, pos: 0 }
    }

    fn skip_ws(&mut self) {
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Peeks the next non-whitespace byte, if any.
    pub fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.as_bytes().get(self.pos).copied()
    }

    /// Whether the next value is an object (`{`), e.g. a data-carrying
    /// enum variant.
    pub fn peek_is_object(&mut self) -> bool {
        self.peek() == Some(b'{')
    }

    /// Consumes the given punctuation byte, erroring on mismatch.
    pub fn expect(&mut self, ch: u8) -> Result<(), Error> {
        match self.peek() {
            Some(b) if b == ch => {
                self.pos += 1;
                Ok(())
            }
            other => Err(Error::custom(format!(
                "expected {:?} at byte {}, found {:?}",
                ch as char,
                self.pos,
                other.map(|b| b as char)
            ))),
        }
    }

    /// Consumes a separating comma if one is present.
    pub fn comma_opt(&mut self) {
        if self.peek() == Some(b',') {
            self.pos += 1;
        }
    }

    /// Opens a named-field struct (`{`).
    pub fn begin_struct(&mut self) -> Result<(), Error> {
        self.expect(b'{')
    }

    /// Reads a named field, checking the key matches `name`.
    pub fn field<T: Deserialize>(&mut self, name: &str) -> Result<T, Error> {
        self.comma_opt();
        let key = self.parse_string()?;
        if key != name {
            return Err(Error::custom(format!(
                "expected field \"{name}\", found \"{key}\""
            )));
        }
        self.expect(b':')?;
        T::deserialize(self)
    }

    /// Closes a named-field struct (`}`).
    pub fn end_struct(&mut self) -> Result<(), Error> {
        self.expect(b'}')
    }

    /// Opens a sequence (`[`).
    pub fn begin_seq(&mut self) -> Result<(), Error> {
        self.expect(b'[')
    }

    /// Reads the next sequence element, or `None` at the closing `]`
    /// (which is consumed).
    pub fn seq_next<T: Deserialize>(&mut self) -> Result<Option<T>, Error> {
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(None);
        }
        self.comma_opt();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(None);
        }
        T::deserialize(self).map(Some)
    }

    /// Reads one element of a fixed-size tuple (comma-separated).
    pub fn tuple_element<T: Deserialize>(&mut self) -> Result<T, Error> {
        self.comma_opt();
        T::deserialize(self)
    }

    /// Closes a sequence (`]`).
    pub fn end_seq(&mut self) -> Result<(), Error> {
        self.expect(b']')
    }

    /// Parses a quoted string literal, resolving escapes.
    pub fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let bytes = self.input.as_bytes();
        let mut out = String::new();
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escaped = bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::custom("unterminated escape sequence".to_string()))?;
                    out.push(match escaped {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => other as char,
                    });
                    self.pos += 1;
                }
                _ => {
                    // Consume one full UTF-8 character.
                    let rest = &self.input[self.pos..];
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        Err(Error::custom("unterminated string literal".to_string()))
    }

    /// Reads a bare token (number, `null`, `true`, `false`) up to the next
    /// delimiter.
    pub fn parse_token(&mut self) -> Result<&'a str, Error> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                b',' | b'}' | b']' | b'{' | b'[' | b':' | b'"' => break,
                b if b.is_ascii_whitespace() => break,
                _ => self.pos += 1,
            }
        }
        if self.pos == start {
            return Err(Error::custom(format!("expected a token at byte {start}")));
        }
        Ok(&self.input[start..self.pos])
    }

    /// Checks the entire input was consumed.
    pub fn finish(mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.pos == self.input.len() {
            Ok(())
        } else {
            Err(Error::custom(format!(
                "trailing input at byte {}",
                self.pos
            )))
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.comma_if_needed();
                s.write_raw(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
                let token = d.parse_token()?;
                token.parse().map_err(|e| {
                    Error::custom(format!("invalid {}: {token:?} ({e})", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.comma_if_needed();
                // `{:?}` prints the shortest decimal that round-trips.
                s.write_raw(&format!("{:?}", self));
            }
        }
        impl Deserialize for $t {
            fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
                let token = d.parse_token()?;
                token.parse().map_err(|e| {
                    Error::custom(format!("invalid {}: {token:?} ({e})", stringify!($t)))
                })
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self, s: &mut Serializer) {
        s.comma_if_needed();
        s.write_raw(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
        match d.parse_token()? {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(Error::custom(format!("invalid bool: {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut Serializer) {
        s.comma_if_needed();
        s.write_string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        self.as_str().serialize(s);
    }
}

impl Deserialize for String {
    fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
        d.parse_string()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_seq();
        for item in self {
            s.seq_element(item);
        }
        s.end_seq();
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::deserialize(d)?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected an array of {N} elements, found {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
        d.begin_seq()?;
        let mut out = Vec::new();
        while let Some(item) = d.seq_next()? {
            out.push(item);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            None => {
                s.comma_if_needed();
                s.write_raw("null");
            }
            Some(value) => value.serialize(s),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
        if d.peek() == Some(b'n') {
            let token = d.parse_token()?;
            if token == "null" {
                return Ok(None);
            }
            return Err(Error::custom(format!("invalid option token {token:?}")));
        }
        T::deserialize(d).map(Some)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, s: &mut Serializer) {
                s.begin_seq();
                $( s.seq_element(&self.$idx); )+
                s.end_seq();
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(d: &mut Deserializer<'_>) -> Result<Self, Error> {
                d.begin_seq()?;
                let value = ($( { let v: $name = d.tuple_element()?; v }, )+);
                d.end_seq()?;
                Ok(value)
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: T) {
        let text = json::to_string(&value);
        let back: T = json::from_str(&text).unwrap_or_else(|e| {
            panic!("failed to parse {text:?}: {e}");
        });
        assert_eq!(back, value, "round-trip through {text:?}");
    }

    #[test]
    fn scalars_round_trip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(usize::MAX);
        roundtrip(-123i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.5f32);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(std::f64::consts::PI);
        roundtrip(-1.25e-300f64);
    }

    #[test]
    fn strings_round_trip_with_escapes() {
        roundtrip(String::from("plain"));
        roundtrip(String::from("with \"quotes\" and \\ backslash"));
        roundtrip(String::from("newline\nand\ttab"));
        roundtrip(String::from("unicode: γ·Ω·χ"));
    }

    #[test]
    fn containers_round_trip() {
        roundtrip(vec![1.0f64, 2.5, -3.75]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(7usize));
        roundtrip(Option::<usize>::None);
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
        roundtrip((1u8, String::from("two"), 3.0f64));
        roundtrip([1.0f64; 6]);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(json::from_str::<u32>("12 34").is_err());
        assert!(json::from_str::<Vec<u32>>("[1,2]]").is_err());
    }

    #[test]
    fn wrong_shape_is_an_error() {
        assert!(json::from_str::<[f64; 2]>("[1.0]").is_err());
        assert!(json::from_str::<bool>("maybe").is_err());
        assert!(json::from_str::<Vec<u32>>("[1,").is_err());
    }
}

/// Convenience entry points mirroring `serde_json`.
pub mod json {
    use super::{Deserialize, Deserializer, Error, Serialize, Serializer};

    /// Serializes `value` to the stub's JSON-like text format.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut s = Serializer::new();
        value.serialize(&mut s);
        s.into_string()
    }

    /// Parses a value previously produced by [`to_string`].
    pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
        let mut d = Deserializer::new(input);
        let value = T::deserialize(&mut d)?;
        d.finish()?;
        Ok(value)
    }
}
