//! Offline stub of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, parsing the item's token stream by
//! hand (no `syn`/`quote` available offline):
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize as their inner value),
//! * enums with unit, tuple (incl. newtype), and struct variants.
//!
//! Generics are unsupported and panic at expansion time with a clear
//! message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    /// Struct with named fields (field names in declaration order).
    NamedStruct { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` unnamed fields.
    TupleStruct { name: String, arity: usize },
    /// Unit struct.
    UnitStruct { name: String },
    /// Enum with the listed variants.
    Enum {
        name: String,
        variants: Vec<(String, VariantShape)>,
    },
}

/// The payload shape of one enum variant.
#[derive(Debug)]
enum VariantShape {
    /// No payload: serialized as `"Variant"`.
    Unit,
    /// Parenthesized payload of the given arity: `{"Variant":value}` for
    /// arity 1, `{"Variant":[v0,...]}` otherwise.
    Tuple(usize),
    /// Named-field payload: `{"Variant":{"field":value,...}}`.
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("s.begin_struct();\n");
            for f in fields {
                body.push_str(&format!("s.field(\"{f}\", &self.{f});\n"));
            }
            body.push_str("s.end_struct();");
            impl_serialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::serialize(&self.0, s);".to_string()
            } else {
                let mut b = String::from("s.begin_seq();\n");
                for i in 0..*arity {
                    b.push_str(&format!("s.seq_element(&self.{i});\n"));
                }
                b.push_str("s.end_seq();");
                b
            };
            impl_serialize(name, &body)
        }
        Item::UnitStruct { name } => impl_serialize(name, "s.begin_struct(); s.end_struct();"),
        Item::Enum { name, variants } => {
            let mut body = String::from("match self {\n");
            for (variant, shape) in variants {
                match shape {
                    VariantShape::Unit => body.push_str(&format!(
                        "{name}::{variant} => s.unit_variant(\"{variant}\"),\n"
                    )),
                    VariantShape::Tuple(1) => body.push_str(&format!(
                        "{name}::{variant}(f0) => s.newtype_variant(\"{variant}\", f0),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{variant}({}) => {{ s.begin_tuple_variant(\"{variant}\");\n",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm.push_str(&format!("s.seq_element({b});\n"));
                        }
                        arm.push_str("s.end_tuple_variant(); }\n");
                        body.push_str(&arm);
                    }
                    VariantShape::Struct(fields) => {
                        let mut arm = format!(
                            "{name}::{variant} {{ {} }} => {{ s.begin_struct_variant(\"{variant}\");\n",
                            fields.join(", ")
                        );
                        for f in fields {
                            arm.push_str(&format!("s.field(\"{f}\", {f});\n"));
                        }
                        arm.push_str("s.end_struct_variant(); }\n");
                        body.push_str(&arm);
                    }
                }
            }
            body.push('}');
            impl_serialize(name, &body)
        }
    };
    code.parse()
        .expect("serde stub derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("d.begin_struct()?;\n");
            let mut ctor = format!("let value = {name} {{\n");
            for f in fields {
                body.push_str(&format!("let field_{f} = d.field(\"{f}\")?;\n"));
                ctor.push_str(&format!("{f}: field_{f},\n"));
            }
            ctor.push_str("};\n");
            body.push_str(&ctor);
            body.push_str("d.end_struct()?;\nOk(value)");
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::deserialize(d)?))")
            } else {
                let mut b = String::from("d.begin_seq()?;\n");
                let mut ctor = format!("let value = {name}(");
                for i in 0..*arity {
                    b.push_str(&format!("let f{i} = d.tuple_element()?;\n"));
                    ctor.push_str(&format!("f{i}, "));
                }
                ctor.push_str(");\n");
                b.push_str(&ctor);
                b.push_str("d.end_seq()?;\nOk(value)");
                b
            };
            impl_deserialize(name, &body)
        }
        Item::UnitStruct { name } => impl_deserialize(
            name,
            &format!("d.begin_struct()?; d.end_struct()?; Ok({name})"),
        ),
        Item::Enum { name, variants } => {
            let mut tagged = String::new();
            let mut plain = String::new();
            for (variant, shape) in variants {
                match shape {
                    VariantShape::Unit => {
                        plain.push_str(&format!("\"{variant}\" => Ok({name}::{variant}),\n"));
                    }
                    VariantShape::Tuple(1) => tagged.push_str(&format!(
                        "\"{variant}\" => {name}::{variant}(::serde::Deserialize::deserialize(d)?),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let mut arm = format!("\"{variant}\" => {{ d.begin_seq()?;\n");
                        let mut ctor = format!("let v = {name}::{variant}(");
                        for i in 0..*n {
                            arm.push_str(&format!("let f{i} = d.tuple_element()?;\n"));
                            ctor.push_str(&format!("f{i}, "));
                        }
                        ctor.push_str(");\n");
                        arm.push_str(&ctor);
                        arm.push_str("d.end_seq()?;\nv }\n");
                        tagged.push_str(&arm);
                    }
                    VariantShape::Struct(fields) => {
                        let mut arm = format!("\"{variant}\" => {{ d.begin_struct()?;\n");
                        let mut ctor = format!("let v = {name}::{variant} {{\n");
                        for f in fields {
                            arm.push_str(&format!("let field_{f} = d.field(\"{f}\")?;\n"));
                            ctor.push_str(&format!("{f}: field_{f},\n"));
                        }
                        ctor.push_str("};\n");
                        arm.push_str(&ctor);
                        arm.push_str("d.end_struct()?;\nv }\n");
                        tagged.push_str(&arm);
                    }
                }
            }
            let body = format!(
                r#"if d.peek_is_object() {{
                    d.expect(b'{{')?;
                    let tag = d.parse_string()?;
                    d.expect(b':')?;
                    let value = match tag.as_str() {{
                        {tagged}
                        other => return Err(::serde::Error::custom(format!(
                            "unknown data variant {{other:?}} for {name}"))),
                    }};
                    d.expect(b'}}')?;
                    Ok(value)
                }} else {{
                    let tag = d.parse_string()?;
                    match tag.as_str() {{
                        {plain}
                        other => Err(::serde::Error::custom(format!(
                            "unknown unit variant {{other:?}} for {name}"))),
                    }}
                }}"#
            );
            impl_deserialize(name, &body)
        }
    };
    code.parse()
        .expect("serde stub derive generated invalid Rust")
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, s: &mut ::serde::Serializer) {{\n{body}\n}}\n\
         }}"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             #[allow(unreachable_code)]\n\
             fn deserialize(d: &mut ::serde::Deserializer<'_>) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "serde stub derive: generic type `{name}` is unsupported; extend vendor/serde_derive"
        );
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde stub derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde stub derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

/// Skips leading attributes (including doc comments) and a visibility
/// qualifier, advancing `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute's `[...]` group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1; // optional `(crate)` / `(super)` restriction
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected `:` after field, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances `i` past a type, stopping at a top-level `,` (angle brackets
/// tracked as punct depth; `(...)`/`[...]` arrive as atomic groups).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        variants.push((name, shape));
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}
