#!/usr/bin/env bash
# Tier-1 verification: the whole workspace (every crate, bin, bench, and
# test target) must build in release mode and the full test suite (unit +
# integration + doc tests, including the backend trait-conformance suite and
# the golden-file snapshots under tests/golden/) must pass. Everything is
# offline: all external dependencies are path stubs under vendor/.
#
# Time knobs for slow machines: PROPTEST_CASES caps property-test cases and
# GOLDEN_RUNS=0 skips the golden-file binary runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
# Compiler warnings are gate failures: the workspace must build warning-free.
RUSTFLAGS="-D warnings" cargo build --release --workspace --all-targets
cargo test -q
cargo test -q -p timely-sim
cargo test -q -p timely-dse
cargo test -q -p timely-baselines   # backend trait-conformance suite
cargo test -q -p timely-lint        # lexer/rule units + fixtures + self-check
cargo test -q -p timely-obs         # deterministic telemetry + trace export
# Static analysis gate (lint.toml): determinism, panic-freedom, unit
# discipline, float-eq, call-graph panic-reachability, hot-loop allocation
# checks — plus the suppression budget ratchet (the run exits nonzero when
# the live suppression count drifts from [budget] in either direction).
# Runs before the golden-file studies so an invariant slip fails fast with
# file:line [rule] output; use --fix-hints locally for suggested rewrites.
cargo run --release -p timely-lint -- --fix-hints
# The machine-readable report must be byte-identical across runs (same
# discipline as the golden studies).
cargo run --release -p timely-lint -- --json > target/lint_report_a.json
cargo run --release -p timely-lint -- --json > target/lint_report_b.json
cmp target/lint_report_a.json target/lint_report_b.json
# No suppression may outlive the code it suppresses.
cargo run --release -p timely-lint -- --stale-allows
# The serving study also exercises the observability exports: the bin
# validates the Chrome trace by parsing it back through the vendored serde
# stubs before writing it (byte-identical across runs; golden-pinned too).
cargo run --release -p timely-bench --bin serving_study -- --smoke \
    --trace target/trace_smoke.json --metrics target/metrics_smoke.txt > /dev/null
cargo run --release -p timely-bench --bin dse_study -- --smoke > /dev/null
cargo run --release -p timely-bench --bin backend_matrix > /dev/null
# Soft perf gate: re-measure DSE/sim throughput and compare against the
# committed BENCH_*.json baselines by ratio. Deltas are reported; only a
# >2x slowdown fails (wall-clock noise between machines must not).
cargo run --release -p timely-bench --bin perf_harness -- --smoke --check
echo "tier-1 verify: OK"
