#!/usr/bin/env bash
# Tier-1 verification: the whole workspace must build in release mode and the
# full test suite (unit + integration + doc tests) must pass. Everything is
# offline: all external dependencies are path stubs under vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q
cargo test -q -p timely-sim
cargo run --release -p timely-bench --bin serving_study -- --smoke > /dev/null
echo "tier-1 verify: OK"
