//! Integration test: every benchmark in the zoo can be evaluated end-to-end
//! on TIMELY and on every baseline that supports it, and the reports are
//! internally consistent.

use timely::baselines::PrimeModel;
use timely::prelude::*;

#[test]
fn every_zoo_model_evaluates_on_timely_8bit() {
    let accelerator = TimelyAccelerator::new(TimelyConfig::paper_default());
    for model in timely::nn::zoo::all_models() {
        let report = accelerator
            .evaluate(&model)
            .unwrap_or_else(|e| panic!("{} failed: {e}", model.name()));
        assert!(report.energy_millijoules() > 0.0, "{}", model.name());
        assert!(
            report.throughput_inferences_per_second() > 0.0,
            "{}",
            model.name()
        );
        assert_eq!(report.model_name, model.name());
        // Larger models must not be cheaper per inference than CNN-1.
        assert!(report.total_macs > 0);
    }
}

#[test]
fn every_zoo_model_evaluates_on_every_baseline() {
    for model in timely::nn::zoo::all_models() {
        for baseline in baseline_registry() {
            // A model a baseline cannot hold (e.g. MSRA-3 on one ISAAC chip)
            // is a structured Unsupported answer, not a failure.
            let report = match baseline.evaluate(&model) {
                Ok(report) => report,
                Err(EvalError::Unsupported { .. }) => continue,
                Err(e) => panic!("{} on {} failed: {e}", baseline.name(), model.name()),
            };
            assert!(
                report.energy.total().as_femtojoules() > 0.0,
                "{} on {}",
                baseline.name(),
                model.name()
            );
        }
    }
}

#[test]
fn energy_ranking_is_stable_across_model_sizes() {
    // For every model, the energy ordering TIMELY < PRIME must hold; and among
    // the convolutional ImageNet benchmarks, MAC count and energy must grow
    // together (MLP-only models are excluded: their energy is dominated by
    // their tiny activation volume, not their MAC count).
    let timely = TimelyAccelerator::new(TimelyConfig::paper_default());
    let prime = PrimeModel::default();
    for model in timely::nn::zoo::all_models() {
        let t = Backend::evaluate(&timely, &model).unwrap();
        let p = prime.evaluate(&model).unwrap();
        assert!(
            t.energy_millijoules() < p.energy_millijoules(),
            "TIMELY must beat PRIME on {}",
            model.name()
        );
    }
    let energy_of = |name: &str| {
        let model = timely::nn::zoo::by_name(name).unwrap();
        timely.evaluate(&model).unwrap().energy_millijoules()
    };
    assert!(energy_of("SqueezeNet") < energy_of("ResNet-50"));
    assert!(energy_of("ResNet-50") < energy_of("ResNet-152"));
    assert!(energy_of("VGG-1") < energy_of("VGG-4"));
}

#[test]
fn sixteen_bit_configuration_is_consistently_more_expensive() {
    let timely8 = TimelyAccelerator::new(TimelyConfig::paper_default());
    let timely16 = TimelyAccelerator::new(TimelyConfig::paper_16bit());
    for model in timely::nn::zoo::prime_benchmarks() {
        let e8 = timely8.evaluate(&model).unwrap().energy_millijoules();
        let e16 = timely16.evaluate(&model).unwrap().energy_millijoules();
        assert!(e16 > e8, "{}: 16-bit {e16} <= 8-bit {e8}", model.name());
    }
}
