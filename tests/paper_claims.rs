//! Cross-crate integration tests checking the paper's headline claims
//! end-to-end: each test exercises the model zoo, the workload analysis, the
//! TIMELY simulator, and the baseline models together.

use timely::baselines::{IsaacModel, PrimeModel, PrimeWithAlbO2ir};
use timely::prelude::*;

fn geometric_mean(values: &[f64]) -> f64 {
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[test]
fn timely_beats_prime_by_roughly_an_order_of_magnitude_in_energy_efficiency() {
    // Fig. 8(a): geometric-mean improvement over PRIME of ~10x across the
    // benchmark suite (we evaluate a representative subset to keep the test
    // fast; the full sweep is the fig08a binary).
    let timely = TimelyAccelerator::new(TimelyConfig::paper_default());
    let prime = PrimeModel::default();
    let mut ratios = Vec::new();
    for model in [
        timely::nn::zoo::vgg_d(),
        timely::nn::zoo::cnn_1(),
        timely::nn::zoo::mlp_l(),
        timely::nn::zoo::resnet_50(),
        timely::nn::zoo::squeezenet(),
    ] {
        let t = Backend::evaluate(&timely, &model).unwrap();
        let p = prime.evaluate(&model).unwrap();
        ratios.push(p.energy_millijoules() / t.energy_millijoules());
    }
    let gmean = geometric_mean(&ratios);
    assert!(
        (4.0..40.0).contains(&gmean),
        "geometric-mean improvement over PRIME should be roughly an order of magnitude, got {gmean:.1}x"
    );
    // Every model must individually improve.
    assert!(ratios.iter().all(|&r| r > 1.0));
}

#[test]
fn vgg_d_improvement_over_prime_matches_the_paper_band() {
    // Paper: 15.6x for VGG-D.
    let timely = TimelyAccelerator::new(TimelyConfig::paper_default());
    let prime = PrimeModel::default();
    let model = timely::nn::zoo::vgg_d();
    let t = Backend::evaluate(&timely, &model).unwrap();
    let p = prime.evaluate(&model).unwrap();
    let ratio = p.energy_millijoules() / t.energy_millijoules();
    assert!(
        (8.0..35.0).contains(&ratio),
        "VGG-D improvement {ratio:.1}x (paper: 15.6x)"
    );
}

#[test]
fn compact_models_gain_less_than_large_models() {
    // Fig. 8(a) discussion: CNN-1 and SqueezeNet gain less because they fit
    // in one PRIME bank.
    let timely = TimelyAccelerator::new(TimelyConfig::paper_default());
    let prime = PrimeModel::default();
    let ratio = |name: &str| {
        let model = timely::nn::zoo::by_name(name).unwrap();
        let t = Backend::evaluate(&timely, &model).unwrap();
        let p = prime.evaluate(&model).unwrap();
        p.energy_millijoules() / t.energy_millijoules()
    };
    assert!(ratio("CNN-1") < ratio("VGG-D"));
    assert!(ratio("SqueezeNet") < ratio("VGG-D"));
}

#[test]
fn timely_outperforms_isaac_at_sixteen_bit_precision() {
    // Fig. 8(a): geometric mean ~14.8x over ISAAC on ISAAC's benchmarks.
    let timely = TimelyAccelerator::new(TimelyConfig::paper_16bit());
    // 8 chips hold the VGG-scale weights (one ISAAC chip caps at ~33 M);
    // per-inference energy is chip-count-independent in the event model.
    let isaac =
        IsaacModel::new(timely::baselines::isaac::IsaacConfig::paper_default().with_chips(8));
    let mut ratios = Vec::new();
    for model in [timely::nn::zoo::vgg_1(), timely::nn::zoo::vgg_2()] {
        let t = Backend::evaluate(&timely, &model).unwrap();
        let i = isaac.evaluate(&model).unwrap();
        ratios.push(i.energy_millijoules() / t.energy_millijoules());
    }
    let gmean = geometric_mean(&ratios);
    assert!(
        (5.0..40.0).contains(&gmean),
        "improvement over ISAAC {gmean:.1}x (paper geometric mean ~14.8x)"
    );
}

#[test]
fn timely_throughput_exceeds_prime_by_orders_of_magnitude() {
    // Fig. 8(b): 736.6x over PRIME on VGG-D (16-chip configuration).
    let timely_cfg = TimelyConfig::builder().chips(16).build().unwrap();
    let timely = TimelyAccelerator::new(timely_cfg);
    let prime =
        PrimeModel::new(timely::baselines::prime::PrimeConfig::paper_default().with_chips(16));
    let model = timely::nn::zoo::vgg_d();
    let t = Backend::evaluate(&timely, &model).unwrap();
    let p = prime.evaluate(&model).unwrap();
    let ratio = t.inferences_per_second() / p.inferences_per_second();
    assert!(
        ratio > 100.0,
        "throughput improvement over PRIME {ratio:.0}x (paper: 736.6x)"
    );
}

#[test]
fn peak_performance_ordering_matches_table_iv() {
    // TIMELY must dominate every baseline in energy efficiency, and beat
    // PipeLayer (the densest baseline) in computational density.
    let timely8 = TimelyAccelerator::new(TimelyConfig::paper_default());
    let timely16 = TimelyAccelerator::new(TimelyConfig::paper_16bit());
    let prime = PrimeModel::default();
    let isaac = IsaacModel::default();
    assert!(Backend::peak(&timely8).tops_per_watt > prime.peak().tops_per_watt * 5.0);
    assert!(Backend::peak(&timely16).tops_per_watt > isaac.peak().tops_per_watt * 10.0);
    assert!(Backend::peak(&timely8).tops_per_mm2 > prime.peak().tops_per_mm2 * 20.0);
}

#[test]
fn prime_with_alb_o2ir_reproduces_the_generalization_claim() {
    // Fig. 11: ~68% intra-bank data-movement energy reduction on VGG-D.
    let study = PrimeWithAlbO2ir::new();
    let energy = study.intra_bank_energy(&timely::nn::zoo::vgg_d()).unwrap();
    assert!((0.5..0.95).contains(&energy.reduction()));
}

#[test]
fn interface_energy_reduction_matches_fig_9b() {
    // Fig. 9(b): TIMELY's DTC/TDC energy is ~99.6% lower than PRIME's
    // DAC/ADC energy on VGG-D.
    let timely = TimelyAccelerator::new(TimelyConfig::paper_default());
    let prime = PrimeModel::default();
    let model = timely::nn::zoo::vgg_d();
    let t = Backend::evaluate(&timely, &model).unwrap();
    let p = prime.evaluate(&model).unwrap();
    let reduction = 1.0 - t.energy.interfaces() / p.energy.interfaces();
    assert!(
        reduction > 0.95,
        "interface energy reduction {reduction:.4} (paper: 0.996)"
    );
}

#[test]
fn memory_energy_reduction_matches_fig_9c() {
    // Fig. 9(c): 93% memory-energy reduction on VGG-D.
    let timely = TimelyAccelerator::new(TimelyConfig::paper_default());
    let prime = PrimeModel::default();
    let model = timely::nn::zoo::vgg_d();
    let t = Backend::evaluate(&timely, &model).unwrap();
    let p = prime.evaluate(&model).unwrap();
    let reduction = 1.0 - t.energy.data_movement() / p.energy.data_movement();
    assert!(
        reduction > 0.85,
        "memory energy reduction {reduction:.3} (paper: 0.93)"
    );
}
