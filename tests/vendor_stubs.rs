//! Integration tests for the offline `vendor/` stub crates, exercised
//! through the real workspace types: a `TimelyConfig` must survive a serde
//! round-trip, and the `rand` stub's seeded PRNG must be deterministic.

use rand::rngs::StdRng;
use rand::SeedableRng;
use timely::arch::TimelyConfig;
use timely::nn::shape::FeatureMap;
use timely::nn::tensor::Tensor;

#[test]
fn timely_config_round_trips_through_the_serde_stub() {
    for config in [
        TimelyConfig::paper_default(),
        TimelyConfig::paper_16bit(),
        TimelyConfig::builder()
            .gamma(4)
            .precision(16, 16)
            .chips(16)
            .subchips_per_chip(53)
            .build()
            .unwrap(),
    ] {
        let text = serde::json::to_string(&config);
        let back: TimelyConfig = serde::json::from_str(&text)
            .unwrap_or_else(|e| panic!("config failed to parse back: {e}\n{text}"));
        assert_eq!(back, config);
    }
}

#[test]
fn serialized_config_is_human_readable() {
    let text = serde::json::to_string(&TimelyConfig::paper_default());
    // Spot-check the format: named fields with their paper-default values.
    assert!(text.contains("\"crossbar_size\":256"), "{text}");
    assert!(text.contains("\"gamma\":8"), "{text}");
    assert!(text.contains("\"subchips_per_chip\":106"), "{text}");
}

#[test]
fn zoo_model_round_trips_through_the_serde_stub() {
    // SqueezeNet exercises the enum payloads (Branch/Pool/Conv variants),
    // nested Vec<ConvSpec>, and String layer names.
    for model in [
        timely::nn::zoo::squeezenet(),
        timely::nn::zoo::resnet_18(),
        timely::nn::zoo::mlp_l(),
    ] {
        let text = serde::json::to_string(&model);
        let back: timely::nn::Model = serde::json::from_str(&text)
            .unwrap_or_else(|e| panic!("{} failed to parse back: {e}", model.name()));
        assert_eq!(back, model);
    }
}

#[test]
fn struct_variant_enums_round_trip_through_the_serde_stub() {
    // The `timely-sim` traffic and scheduler enums exercise the derive
    // stub's struct-variant support ({"Variant":{"field":value,...}}).
    use timely::sim::{ArrivalProcess, ModelMix, Policy, TrafficSpec};

    for process in [
        ArrivalProcess::Poisson { rate: 1500.0 },
        ArrivalProcess::Bursty {
            base_rate: 100.0,
            burst_rate: 2000.0,
            mean_burst_s: 0.05,
            mean_quiet_s: 0.2,
        },
        ArrivalProcess::ClosedLoop {
            clients: 16,
            think_time_s: 0.01,
        },
    ] {
        let traffic = TrafficSpec {
            process,
            mix: ModelMix::weighted(vec![(0, 2.0), (3, 1.0)]),
        };
        let text = serde::json::to_string(&traffic);
        let back: TrafficSpec = serde::json::from_str(&text)
            .unwrap_or_else(|e| panic!("traffic failed to parse back: {e}\n{text}"));
        assert_eq!(back, traffic);
    }

    for policy in [
        Policy::Fifo,
        Policy::Batched {
            window_s: 0.001,
            max_batch: 8,
        },
        Policy::ShortestQueue,
    ] {
        let text = serde::json::to_string(&policy);
        let back: Policy = serde::json::from_str(&text)
            .unwrap_or_else(|e| panic!("policy failed to parse back: {e}\n{text}"));
        assert_eq!(back, policy);
    }
}

#[test]
fn exponential_and_geometric_stub_distributions_are_seed_stable() {
    use rand::distributions::{Distribution, Exp, Geometric};

    let mut a = StdRng::seed_from_u64(99);
    let mut b = StdRng::seed_from_u64(99);
    let exp = Exp::new(3.0);
    let geo = Geometric::new(0.4);
    let xs: Vec<f64> = (0..64).map(|_| exp.sample(&mut a)).collect();
    let ys: Vec<f64> = (0..64).map(|_| exp.sample(&mut b)).collect();
    assert_eq!(xs, ys);
    let gs: Vec<u64> = (0..64).map(|_| geo.sample(&mut a)).collect();
    let hs: Vec<u64> = (0..64).map(|_| geo.sample(&mut b)).collect();
    assert_eq!(gs, hs);
}

#[test]
fn seeded_prng_streams_are_deterministic_and_seed_sensitive() {
    let sample = |seed: u64| -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::random_uniform(FeatureMap::new(2, 4, 4), 1.0, &mut rng)
            .data()
            .to_vec()
    };
    assert_eq!(sample(42), sample(42), "same seed must replay the stream");
    assert_ne!(sample(42), sample(43), "different seeds must diverge");
}

#[test]
fn noisy_inference_is_reproducible_across_engines() {
    use timely::nn::infer::{accuracy_under_noise, InferenceConfig, NoiseModel};

    let model = timely::nn::zoo::cnn_1();
    let run = || {
        accuracy_under_noise(
            &model,
            InferenceConfig::int8(),
            NoiseModel::timely_default(),
            3,
            7,
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.samples, b.samples);
    assert_eq!(
        a.agreements, b.agreements,
        "accuracy study must be deterministic given a fixed seed"
    );
}
