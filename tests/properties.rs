//! Property-based integration tests over the public API: invariants that must
//! hold for arbitrary (valid) configurations and synthetic layer shapes.

use proptest::prelude::*;
use timely::arch::{
    AreaBreakdown, EnergyBreakdown, ModelMapping, PeakPerformance, SubChipGeometry,
    ThroughputReport, TimelyConfig,
};
use timely::nn::{ConvSpec, FeatureMap, ModelBuilder};
use timely::sim::{
    ArrivalProcess, ModelMix, ModelProfile, Policy, ServingSimulator, Sharding, SimConfig,
    TrafficSpec,
};

/// A strategy producing small but valid convolutional models.
fn small_conv_model() -> impl Strategy<Value = timely::nn::Model> {
    (
        1usize..=8,  // input channels
        1usize..=32, // output channels
        prop::sample::select(vec![1usize, 3, 5]),
        1usize..=2,  // stride
        8usize..=32, // spatial size
    )
        .prop_map(|(c, d, k, s, hw)| {
            let padding = k / 2;
            ModelBuilder::new("prop", FeatureMap::new(c, hw, hw))
                .conv_relu("conv1", ConvSpec::new(c, d, k, s, padding))
                .build()
                .expect("generated models are valid")
        })
}

/// A strategy producing valid TIMELY configurations.
fn arbitrary_config() -> impl Strategy<Value = TimelyConfig> {
    (
        prop::sample::select(vec![2usize, 4, 8, 16]),
        prop::sample::select(vec![8u8, 16]),
        1usize..=4,
        10usize..=120,
    )
        .prop_map(|(gamma, bits, chips, subchips)| {
            TimelyConfig::builder()
                .gamma(gamma)
                .precision(bits, bits)
                .chips(chips)
                .subchips_per_chip(subchips)
                .build()
                .expect("generated configurations are valid")
        })
}

proptest! {
    // Capped so the whole suite stays fast on a single-CPU CI container;
    // override with e.g. `PROPTEST_CASES=256 cargo test`.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn energy_is_positive_and_finite_for_any_model_and_config(
        model in small_conv_model(),
        config in arbitrary_config(),
    ) {
        let mapping = ModelMapping::analyze(&model, &config).unwrap();
        let energy = EnergyBreakdown::for_mapping(&mapping, &config);
        prop_assert!(energy.total().as_femtojoules() > 0.0);
        prop_assert!(energy.total().as_femtojoules().is_finite());
    }

    #[test]
    fn data_type_view_partitions_the_total(
        model in small_conv_model(),
        config in arbitrary_config(),
    ) {
        use timely::arch::DataType;
        let mapping = ModelMapping::analyze(&model, &config).unwrap();
        let energy = EnergyBreakdown::for_mapping(&mapping, &config);
        let partitioned = energy.by_data_type(DataType::Input)
            + energy.by_data_type(DataType::Psum)
            + energy.by_data_type(DataType::Output)
            + energy.by_data_type(DataType::Compute);
        let rel = (partitioned.as_femtojoules() - energy.total().as_femtojoules()).abs()
            / energy.total().as_femtojoules();
        prop_assert!(rel < 1e-9);
    }

    #[test]
    fn o2ir_never_reads_more_inputs_than_the_conventional_mapping(
        model in small_conv_model(),
    ) {
        let o2ir_cfg = TimelyConfig::paper_default();
        let mut conventional_cfg = TimelyConfig::paper_default();
        conventional_cfg.features.o2ir_mapping = false;
        let o2ir = ModelMapping::analyze(&model, &o2ir_cfg).unwrap();
        let conventional = ModelMapping::analyze(&model, &conventional_cfg).unwrap();
        prop_assert!(o2ir.totals.l1_input_reads <= conventional.totals.l1_input_reads);
    }

    #[test]
    fn area_scales_linearly_with_subchip_count(subchips in 1usize..=200) {
        let one = TimelyConfig::builder().subchips_per_chip(1).build().unwrap();
        let many = TimelyConfig::builder().subchips_per_chip(subchips).build().unwrap();
        let a1 = AreaBreakdown::for_chip(&one).total().as_square_microns();
        let an = AreaBreakdown::for_chip(&many).total().as_square_microns();
        prop_assert!((an / a1 - subchips as f64).abs() < 1e-6);
    }

    #[test]
    fn peak_ops_scale_inversely_with_precision(config in arbitrary_config()) {
        let mut cfg8 = config.clone();
        cfg8.weight_bits = 8;
        cfg8.activation_bits = 8;
        let mut cfg16 = config;
        cfg16.weight_bits = 16;
        cfg16.activation_bits = 16;
        let p8 = PeakPerformance::for_config(&cfg8);
        let p16 = PeakPerformance::for_config(&cfg16);
        prop_assert!(p8.ops_per_second >= p16.ops_per_second);
    }

    #[test]
    fn geometry_counts_are_consistent(config in arbitrary_config()) {
        let geo = SubChipGeometry::from_config(&config);
        prop_assert_eq!(geo.crossbars, config.subchip_rows * config.subchip_cols);
        prop_assert_eq!(geo.dtcs * config.gamma, geo.input_rows);
        prop_assert_eq!(geo.tdcs * config.gamma, geo.output_columns);
        prop_assert!(geo.weight_capacity > 0);
    }

    #[test]
    fn simulator_is_deterministic_under_a_fixed_seed(
        seed in 0u64..=u64::MAX,
        chips in 1usize..=4,
    ) {
        let model = timely::nn::zoo::cnn_1();
        let profile = ModelProfile::for_model(&model, &TimelyConfig::paper_default())
            .expect("CNN-1 fits on one chip");
        let rate = 0.6 * profile.capacity_rps() * chips as f64;
        let sim = ServingSimulator::new(
            std::slice::from_ref(&model),
            &TimelyConfig::paper_default(),
            SimConfig {
                seed,
                duration_s: 300.0 / rate,
                chips,
                policy: Policy::ShortestQueue,
                sharding: Sharding::Replicate,
            },
        )
        .expect("CNN-1 fits on one chip");
        let traffic = TrafficSpec {
            process: ArrivalProcess::Poisson { rate },
            mix: ModelMix::single(0),
        };
        let a = sim.run(&traffic);
        let b = sim.run(&traffic);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn simulated_throughput_converges_to_the_analytical_model(seed in 0u64..=u64::MAX) {
        // At low load the simulator must reproduce the closed-form numbers:
        // the median latency is the analytical single-inference latency and
        // completions track arrivals; driven to saturation, the completion
        // rate converges to the analytical
        // `throughput_inferences_per_second()` (= 1 / initiation interval),
        // both within 10%.
        let model = timely::nn::zoo::cnn_1();
        let mut config = TimelyConfig::paper_default();
        config.chips = 1;
        let analytical = ThroughputReport::for_model(&model, &config)
            .expect("CNN-1 fits on one chip");
        let profile = ModelProfile::for_model(&model, &config).unwrap();
        let build = |duration_s: f64| {
            ServingSimulator::new(
                std::slice::from_ref(&model),
                &config,
                SimConfig {
                    seed,
                    duration_s,
                    chips: 1,
                    policy: Policy::Fifo,
                    sharding: Sharding::Replicate,
                },
            )
            .expect("CNN-1 fits on one chip")
        };

        // Low load: 10% of capacity.
        let rate = 0.1 * analytical.inferences_per_second;
        let low = build(400.0 / rate).run(&TrafficSpec::poisson(rate, 0));
        let analytical_ms = analytical.single_inference_latency.as_seconds() * 1e3;
        let drift = (low.latency.p50_ms - analytical_ms).abs() / analytical_ms;
        prop_assert!(drift < 0.10, "low-load p50 {} vs analytical {analytical_ms}", low.latency.p50_ms);
        // Completions track realized arrivals (the offered count itself is
        // Poisson-random, so compare against it rather than the mean rate).
        prop_assert!(
            low.completed as f64 >= 0.90 * low.offered as f64,
            "low-load completions {} vs arrivals {}",
            low.completed,
            low.offered
        );

        // Saturation: enough closed-loop clients to keep the pipeline full.
        let clients = profile.saturating_clients();
        let sat = build(1_000.0 * profile.initiation_interval_s).run(&TrafficSpec {
            process: ArrivalProcess::ClosedLoop { clients, think_time_s: 0.0 },
            mix: ModelMix::single(0),
        });
        let sat_drift = (sat.throughput_rps - analytical.inferences_per_second).abs()
            / analytical.inferences_per_second;
        prop_assert!(
            sat_drift < 0.10,
            "saturated throughput {} vs analytical {}",
            sat.throughput_rps,
            analytical.inferences_per_second
        );
    }
}
